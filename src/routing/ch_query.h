#ifndef MTSHARE_ROUTING_CH_QUERY_H_
#define MTSHARE_ROUTING_CH_QUERY_H_

#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "routing/contraction_hierarchy.h"

namespace mtshare {

/// Work counters of one ChQuery engine since its last ResetStats(). The
/// oracle aggregates these across its engine pool into Metrics::routing.
struct ChQueryStats {
  /// Bidirectional point queries answered.
  int64_t point_queries = 0;
  /// Bucket-based one-to-many / many-to-many passes answered.
  int64_t bucket_queries = 0;
  /// Vertices settled by upward searches (forward + backward, point and
  /// bucket passes alike) — the CH counterpart of the truncated-Dijkstra
  /// settled_vertices counter.
  int64_t upward_settled = 0;
  /// (vertex, target, distance) entries deposited into buckets.
  int64_t bucket_entries = 0;
};

/// Query engine over a ContractionHierarchy: bidirectional upward point
/// queries plus bucket-based one-to-many and many-to-many (settle each
/// target's downward search into per-vertex buckets once, then answer
/// every source with a single upward sweep — the insertion-evaluation
/// workload of Laupichler & Sanders, arXiv:2311.01581).
///
/// Costs are bit-identical to DijkstraSearch on the same network because
/// arc costs live on the exact dyadic grid (QuantizeTravelCost): every
/// sum of arc/shortcut costs is exact, so the minimum over up-down paths
/// equals the true shortest distance to the last bit.
///
/// Buffers are epoch-stamped and O(V); not thread-safe — one engine per
/// thread (DistanceOracle keeps a pool).
class ChQuery {
 public:
  explicit ChQuery(const ContractionHierarchy& ch);

  /// Shortest travel time s -> t (kInfiniteCost if unreachable).
  Seconds Cost(VertexId source, VertexId target);

  /// Builds per-vertex buckets for `targets` (duplicates allowed): one
  /// backward upward search per distinct target vertex. Buckets stay valid
  /// until the next BuildBuckets() call on this engine.
  void BuildBuckets(std::span<const VertexId> targets);

  /// Costs from `source` to every target of the last BuildBuckets(),
  /// aligned with that target span, via one forward upward sweep.
  void SourceToBuckets(VertexId source, std::vector<Seconds>* out);

  /// One-to-many: BuildBuckets(targets) + one sweep. Counts one bucket
  /// pass.
  void CostMany(VertexId source, std::span<const VertexId> targets,
                std::vector<Seconds>* out);

  /// Many-to-many: buckets once, one sweep per source. `out` is row-major
  /// |sources| x |targets|. Counts one bucket pass.
  void CostManyToMany(std::span<const VertexId> sources,
                      std::span<const VertexId> targets,
                      std::vector<Seconds>* out);

  const ChQueryStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ChQueryStats{}; }

  /// Resident bytes of this engine's search buffers and buckets.
  size_t MemoryBytes() const;

 private:
  struct QueueEntry {
    Seconds cost;
    VertexId vertex;
    bool operator>(const QueueEntry& other) const {
      return cost > other.cost;
    }
  };
  using MinQueue = std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                                       std::greater<QueueEntry>>;
  struct BucketEntry {
    int32_t target_index;
    Seconds cost;
  };

  void BumpEpoch();

  const ContractionHierarchy& ch_;

  // Forward (dist_f_) and backward (dist_b_) upward search state, valid
  // iff the matching epoch entry equals epoch_id_.
  std::vector<Seconds> dist_f_;
  std::vector<uint32_t> epoch_f_;
  std::vector<Seconds> dist_b_;
  std::vector<uint32_t> epoch_b_;
  uint32_t epoch_id_ = 0;
  MinQueue queue_f_;
  MinQueue queue_b_;

  // Bucket state: buckets_[v] holds entries of the most recent
  // BuildBuckets() iff bucket_epoch_[v] == bucket_epoch_id_.
  std::vector<std::vector<BucketEntry>> buckets_;
  std::vector<uint32_t> bucket_epoch_;
  uint32_t bucket_epoch_id_ = 0;
  std::vector<VertexId> bucket_targets_;
  // target vertex -> index of its first occurrence in bucket_targets_
  // (duplicate targets share one backward search), epoch-stamped.
  std::vector<int32_t> target_slot_;
  std::vector<uint32_t> target_slot_epoch_;
  // Deduplicated copy-list: for duplicate targets, (from, to) index pairs.
  std::vector<std::pair<int32_t, int32_t>> duplicate_targets_;
  std::vector<Seconds> row_buf_;

  ChQueryStats stats_;
};

}  // namespace mtshare

#endif  // MTSHARE_ROUTING_CH_QUERY_H_
