#ifndef MTSHARE_ROUTING_LAST_STOP_BUCKETS_H_
#define MTSHARE_ROUTING_LAST_STOP_BUCKETS_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "routing/contraction_hierarchy.h"

namespace mtshare {

/// Work counters of one bucket store since construction, harvested into
/// Metrics::routing (bucket_candidates / bucket_maintenance_ms).
struct LastStopBucketStats {
  /// Taxi anchor rebuilds (one forward upward search each).
  int64_t updates = 0;
  /// Backward candidate sweeps answered.
  int64_t sweeps = 0;
  /// Taxis discovered within budget, summed over sweeps.
  int64_t found = 0;
  /// Vertices settled by sweeps (compare against the per-taxi point
  /// queries the index path would have paid).
  int64_t sweep_settled = 0;
  /// Vertices settled while depositing anchors.
  int64_t deposit_settled = 0;
  /// Wall-clock milliseconds spent in FlushDirty (incremental bucket
  /// maintenance — the cost the index path does not pay).
  double maintenance_ms = 0.0;
};

/// Per-vehicle CH bucket entries, the candidate-search substrate of KaRRi
/// (Laupichler & Sanders, arXiv:2311.01581): each taxi deposits
/// `(taxi, dist)` entries over the upward search space of its anchor
/// vertex, so "which taxis can reach vertex o within budget b" becomes ONE
/// backward upward sweep from o instead of one point query per taxi.
///
/// The anchor is the taxi's *current location* — the exact vertex the
/// index-path probes `oracle->Cost(t.location, origin)` read — so swept
/// distances are bit-identical to oracle costs (dyadic arc grid: every
/// up-down sum is exact, see ChQuery). Anchors are maintained lazily:
/// MarkDirty is O(1) and idempotent (the engine calls it on every taxi
/// movement/commit notification), FlushDirty re-deposits only the dirty
/// taxis before a sweep reads the store.
///
/// Sweeps are budget-truncated with kBudgetSlack headroom: every taxi with
/// true distance <= budget + slack is reported with its exact distance
/// (its witness meeting vertex settles before the cutoff); taxis beyond
/// may be missing or carry a partial-min overestimate — both are rejected
/// by the caller's exact `now + d > deadline` re-check, exactly as the
/// index path rejects them. Not thread-safe; one store per dispatcher.
class LastStopBuckets {
 public:
  LastStopBuckets(const ContractionHierarchy& ch, int32_t num_taxis);

  int32_t num_taxis() const {
    return static_cast<int32_t>(handles_.size());
  }

  /// Marks a taxi's deposits stale (O(1)). Safe to call for any state
  /// change; only location changes actually move the anchor.
  void MarkDirty(TaxiId id) { dirty_[id] = 1; }
  bool dirty(TaxiId id) const { return dirty_[id] != 0; }
  /// The vertex a taxi's live deposits were made from (kInvalidVertex
  /// before the first flush).
  VertexId anchor(TaxiId id) const { return anchor_[id]; }

  /// Re-deposits every dirty taxi from `anchor_of(id)` (its current
  /// location). Call before Sweep so the store matches the fleet.
  void FlushDirty(const std::function<VertexId(TaxiId)>& anchor_of);

  /// Backward upward sweep from `origin`, truncated once the queue minimum
  /// exceeds budget + kBudgetSlack. Records, per discovered taxi, the
  /// minimum over settled meeting vertices of (deposit dist + sweep dist)
  /// — the exact anchor->origin distance whenever it is <= budget + slack.
  void Sweep(VertexId origin, Seconds budget);

  /// Taxis discovered by the last Sweep (unspecified order).
  const std::vector<TaxiId>& found() const { return found_; }
  /// Distance recorded by the last Sweep (kInfiniteCost if not found).
  Seconds SweptDistance(TaxiId id) const {
    return swept_epoch_[id] == sweep_epoch_id_ ? swept_dist_[id]
                                               : kInfiniteCost;
  }

  /// Headroom added to the sweep cutoff so FP rounding in the caller's
  /// `deadline - now` budget can never hide a taxi the exact predicate
  /// would accept (rounding error is ~ulp of seconds-scale values,
  /// orders of magnitude below this).
  static constexpr Seconds kBudgetSlack = 1e-3;

  const LastStopBucketStats& stats() const { return stats_; }
  size_t MemoryBytes() const;

 private:
  struct QueueEntry {
    Seconds cost;
    VertexId vertex;
    bool operator>(const QueueEntry& other) const {
      return cost > other.cost;
    }
  };
  using MinQueue = std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                                       std::greater<QueueEntry>>;
  /// One deposit: `taxi` reaches this vertex from its anchor at cost
  /// `dist`; `slot` back-references handles_[taxi][slot] so swap-pop
  /// removal can fix the moved entry's handle in O(1).
  struct BucketEntry {
    TaxiId taxi;
    Seconds dist;
    uint32_t slot;
  };
  /// One taxi-side handle: where deposit `slot` of this taxi lives.
  struct Handle {
    VertexId vertex;
    uint32_t pos;  // index into buckets_[vertex]
  };

  void RemoveDeposits(TaxiId id);
  void Deposit(TaxiId id, VertexId anchor);
  void BumpEpoch();

  const ContractionHierarchy& ch_;

  std::vector<std::vector<BucketEntry>> buckets_;  // per vertex, unsorted
  std::vector<std::vector<Handle>> handles_;       // per taxi
  std::vector<VertexId> anchor_;                   // per taxi
  std::vector<uint8_t> dirty_;                     // per taxi
  int64_t live_entries_ = 0;

  // Epoch-stamped forward search state for deposits (mirrors ChQuery).
  std::vector<Seconds> dist_f_;
  std::vector<uint32_t> epoch_f_;
  uint32_t epoch_id_ = 0;
  MinQueue queue_;

  // Per-taxi sweep results, epoch-stamped per Sweep call.
  std::vector<Seconds> swept_dist_;
  std::vector<uint32_t> swept_epoch_;
  uint32_t sweep_epoch_id_ = 0;
  std::vector<TaxiId> found_;

  LastStopBucketStats stats_;
};

}  // namespace mtshare

#endif  // MTSHARE_ROUTING_LAST_STOP_BUCKETS_H_
