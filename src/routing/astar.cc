#include "routing/astar.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace mtshare {

AStarSearch::AStarSearch(const RoadNetwork& network)
    : network_(network),
      dist_(network.num_vertices(), 0.0),
      parent_(network.num_vertices(), kInvalidVertex),
      epoch_(network.num_vertices(), 0) {}

bool AStarSearch::Run(VertexId source, VertexId target) {
  MTSHARE_CHECK(source >= 0 && source < network_.num_vertices());
  MTSHARE_CHECK(target >= 0 && target < network_.num_vertices());
  ++current_epoch_;
  if (current_epoch_ == 0) {
    std::fill(epoch_.begin(), epoch_.end(), 0);
    current_epoch_ = 1;
  }
  last_settled_ = 0;

  struct Entry {
    double f;
    Seconds g;
    VertexId vertex;
    bool operator>(const Entry& other) const { return f > other.f; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;

  dist_[source] = 0.0;
  parent_[source] = kInvalidVertex;
  epoch_[source] = current_epoch_;
  queue.push(Entry{network_.EuclideanLowerBound(source, target), 0.0, source});

  while (!queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (epoch_[top.vertex] != current_epoch_ || top.g > dist_[top.vertex]) {
      continue;
    }
    ++last_settled_;
    if (top.vertex == target) return true;
    for (const Arc& arc : network_.OutArcs(top.vertex)) {
      VertexId next = arc.head;
      Seconds g = top.g + arc.cost;
      if (epoch_[next] != current_epoch_ || g < dist_[next]) {
        epoch_[next] = current_epoch_;
        dist_[next] = g;
        parent_[next] = top.vertex;
        queue.push(Entry{g + network_.EuclideanLowerBound(next, target), g,
                         next});
      }
    }
  }
  return false;
}

Seconds AStarSearch::Cost(VertexId source, VertexId target) {
  if (source == target) return 0.0;
  if (!Run(source, target)) return kInfiniteCost;
  return dist_[target];
}

Path AStarSearch::FindPath(VertexId source, VertexId target) {
  if (source == target) return Path::Trivial(source);
  if (!Run(source, target)) return Path::Invalid();
  Path path;
  path.cost = dist_[target];
  path.valid = true;
  for (VertexId v = target; v != kInvalidVertex; v = parent_[v]) {
    path.vertices.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.vertices.begin(), path.vertices.end());
  return path;
}

}  // namespace mtshare
