# Empty dependencies file for mtshare_tests.
# This may be replaced when dependencies are built.
