
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/clustering/kmeans_test.cc" "tests/CMakeFiles/mtshare_tests.dir/clustering/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/clustering/kmeans_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "tests/CMakeFiles/mtshare_tests.dir/common/random_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/common/random_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/CMakeFiles/mtshare_tests.dir/common/stats_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/common/stats_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/mtshare_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/string_util_test.cc" "tests/CMakeFiles/mtshare_tests.dir/common/string_util_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/common/string_util_test.cc.o.d"
  "/root/repo/tests/common/timer_test.cc" "tests/CMakeFiles/mtshare_tests.dir/common/timer_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/common/timer_test.cc.o.d"
  "/root/repo/tests/core/mtshare_system_test.cc" "tests/CMakeFiles/mtshare_tests.dir/core/mtshare_system_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/core/mtshare_system_test.cc.o.d"
  "/root/repo/tests/demand/demand_model_test.cc" "tests/CMakeFiles/mtshare_tests.dir/demand/demand_model_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/demand/demand_model_test.cc.o.d"
  "/root/repo/tests/demand/request_generator_test.cc" "tests/CMakeFiles/mtshare_tests.dir/demand/request_generator_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/demand/request_generator_test.cc.o.d"
  "/root/repo/tests/demand/trip_io_test.cc" "tests/CMakeFiles/mtshare_tests.dir/demand/trip_io_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/demand/trip_io_test.cc.o.d"
  "/root/repo/tests/geo/latlng_test.cc" "tests/CMakeFiles/mtshare_tests.dir/geo/latlng_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/geo/latlng_test.cc.o.d"
  "/root/repo/tests/geo/mobility_vector_test.cc" "tests/CMakeFiles/mtshare_tests.dir/geo/mobility_vector_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/geo/mobility_vector_test.cc.o.d"
  "/root/repo/tests/graph/graph_generators_test.cc" "tests/CMakeFiles/mtshare_tests.dir/graph/graph_generators_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/graph/graph_generators_test.cc.o.d"
  "/root/repo/tests/graph/graph_io_test.cc" "tests/CMakeFiles/mtshare_tests.dir/graph/graph_io_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/graph/graph_io_test.cc.o.d"
  "/root/repo/tests/graph/road_network_test.cc" "tests/CMakeFiles/mtshare_tests.dir/graph/road_network_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/graph/road_network_test.cc.o.d"
  "/root/repo/tests/matching/dispatchers_test.cc" "tests/CMakeFiles/mtshare_tests.dir/matching/dispatchers_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/matching/dispatchers_test.cc.o.d"
  "/root/repo/tests/matching/idle_cruising_test.cc" "tests/CMakeFiles/mtshare_tests.dir/matching/idle_cruising_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/matching/idle_cruising_test.cc.o.d"
  "/root/repo/tests/matching/taxi_index_test.cc" "tests/CMakeFiles/mtshare_tests.dir/matching/taxi_index_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/matching/taxi_index_test.cc.o.d"
  "/root/repo/tests/mobility/mobility_clustering_test.cc" "tests/CMakeFiles/mtshare_tests.dir/mobility/mobility_clustering_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/mobility/mobility_clustering_test.cc.o.d"
  "/root/repo/tests/mobility/transition_model_test.cc" "tests/CMakeFiles/mtshare_tests.dir/mobility/transition_model_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/mobility/transition_model_test.cc.o.d"
  "/root/repo/tests/partition/bipartite_partitioner_test.cc" "tests/CMakeFiles/mtshare_tests.dir/partition/bipartite_partitioner_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/partition/bipartite_partitioner_test.cc.o.d"
  "/root/repo/tests/partition/landmark_graph_test.cc" "tests/CMakeFiles/mtshare_tests.dir/partition/landmark_graph_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/partition/landmark_graph_test.cc.o.d"
  "/root/repo/tests/partition/map_partitioning_test.cc" "tests/CMakeFiles/mtshare_tests.dir/partition/map_partitioning_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/partition/map_partitioning_test.cc.o.d"
  "/root/repo/tests/partition/partition_quality_test.cc" "tests/CMakeFiles/mtshare_tests.dir/partition/partition_quality_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/partition/partition_quality_test.cc.o.d"
  "/root/repo/tests/payment/payment_model_test.cc" "tests/CMakeFiles/mtshare_tests.dir/payment/payment_model_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/payment/payment_model_test.cc.o.d"
  "/root/repo/tests/routing/astar_test.cc" "tests/CMakeFiles/mtshare_tests.dir/routing/astar_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/routing/astar_test.cc.o.d"
  "/root/repo/tests/routing/bidirectional_test.cc" "tests/CMakeFiles/mtshare_tests.dir/routing/bidirectional_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/routing/bidirectional_test.cc.o.d"
  "/root/repo/tests/routing/dijkstra_test.cc" "tests/CMakeFiles/mtshare_tests.dir/routing/dijkstra_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/routing/dijkstra_test.cc.o.d"
  "/root/repo/tests/routing/distance_oracle_test.cc" "tests/CMakeFiles/mtshare_tests.dir/routing/distance_oracle_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/routing/distance_oracle_test.cc.o.d"
  "/root/repo/tests/sched/partition_filter_test.cc" "tests/CMakeFiles/mtshare_tests.dir/sched/partition_filter_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/sched/partition_filter_test.cc.o.d"
  "/root/repo/tests/sched/route_planner_test.cc" "tests/CMakeFiles/mtshare_tests.dir/sched/route_planner_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/sched/route_planner_test.cc.o.d"
  "/root/repo/tests/sched/schedule_test.cc" "tests/CMakeFiles/mtshare_tests.dir/sched/schedule_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/sched/schedule_test.cc.o.d"
  "/root/repo/tests/sim/engine_edge_test.cc" "tests/CMakeFiles/mtshare_tests.dir/sim/engine_edge_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/sim/engine_edge_test.cc.o.d"
  "/root/repo/tests/sim/engine_property_test.cc" "tests/CMakeFiles/mtshare_tests.dir/sim/engine_property_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/sim/engine_property_test.cc.o.d"
  "/root/repo/tests/sim/engine_test.cc" "tests/CMakeFiles/mtshare_tests.dir/sim/engine_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/sim/engine_test.cc.o.d"
  "/root/repo/tests/sim/metrics_test.cc" "tests/CMakeFiles/mtshare_tests.dir/sim/metrics_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/sim/metrics_test.cc.o.d"
  "/root/repo/tests/spatial/grid_index_test.cc" "tests/CMakeFiles/mtshare_tests.dir/spatial/grid_index_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/spatial/grid_index_test.cc.o.d"
  "/root/repo/tests/spatial/kdtree_test.cc" "tests/CMakeFiles/mtshare_tests.dir/spatial/kdtree_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/spatial/kdtree_test.cc.o.d"
  "/root/repo/tests/traffic/congestion_test.cc" "tests/CMakeFiles/mtshare_tests.dir/traffic/congestion_test.cc.o" "gcc" "tests/CMakeFiles/mtshare_tests.dir/traffic/congestion_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtshare_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_payment.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_demand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
