file(REMOVE_RECURSE
  "CMakeFiles/mtshare_sim_cli.dir/mtshare_sim.cc.o"
  "CMakeFiles/mtshare_sim_cli.dir/mtshare_sim.cc.o.d"
  "mtshare_sim"
  "mtshare_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
