# Empty compiler generated dependencies file for mtshare_sim_cli.
# This may be replaced when dependencies are built.
