# Empty dependencies file for bench_fig10_served_nonpeak.
# This may be replaced when dependencies are built.
