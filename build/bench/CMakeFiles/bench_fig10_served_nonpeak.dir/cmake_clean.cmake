file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_served_nonpeak.dir/bench_fig10_served_nonpeak.cc.o"
  "CMakeFiles/bench_fig10_served_nonpeak.dir/bench_fig10_served_nonpeak.cc.o.d"
  "bench_fig10_served_nonpeak"
  "bench_fig10_served_nonpeak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_served_nonpeak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
