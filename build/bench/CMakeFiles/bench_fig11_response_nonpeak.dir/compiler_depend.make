# Empty compiler generated dependencies file for bench_fig11_response_nonpeak.
# This may be replaced when dependencies are built.
