# Empty dependencies file for mtshare_bench_common.
# This may be replaced when dependencies are built.
