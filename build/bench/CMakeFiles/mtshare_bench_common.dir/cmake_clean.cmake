file(REMOVE_RECURSE
  "CMakeFiles/mtshare_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/mtshare_bench_common.dir/bench_common.cc.o.d"
  "libmtshare_bench_common.a"
  "libmtshare_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
