file(REMOVE_RECURSE
  "libmtshare_bench_common.a"
)
