# Empty compiler generated dependencies file for bench_fig08_detour_peak.
# This may be replaced when dependencies are built.
