file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_detour_nonpeak.dir/bench_fig12_detour_nonpeak.cc.o"
  "CMakeFiles/bench_fig12_detour_nonpeak.dir/bench_fig12_detour_nonpeak.cc.o.d"
  "bench_fig12_detour_nonpeak"
  "bench_fig12_detour_nonpeak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_detour_nonpeak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
