# Empty compiler generated dependencies file for bench_fig12_detour_nonpeak.
# This may be replaced when dependencies are built.
