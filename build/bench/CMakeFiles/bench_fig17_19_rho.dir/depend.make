# Empty dependencies file for bench_fig17_19_rho.
# This may be replaced when dependencies are built.
