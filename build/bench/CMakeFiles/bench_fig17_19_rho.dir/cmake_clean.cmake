file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_19_rho.dir/bench_fig17_19_rho.cc.o"
  "CMakeFiles/bench_fig17_19_rho.dir/bench_fig17_19_rho.cc.o.d"
  "bench_fig17_19_rho"
  "bench_fig17_19_rho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_19_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
