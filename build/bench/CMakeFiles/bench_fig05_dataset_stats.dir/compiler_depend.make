# Empty compiler generated dependencies file for bench_fig05_dataset_stats.
# This may be replaced when dependencies are built.
