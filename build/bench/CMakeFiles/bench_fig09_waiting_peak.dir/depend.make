# Empty dependencies file for bench_fig09_waiting_peak.
# This may be replaced when dependencies are built.
