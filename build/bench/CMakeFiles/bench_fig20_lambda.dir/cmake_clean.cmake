file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_lambda.dir/bench_fig20_lambda.cc.o"
  "CMakeFiles/bench_fig20_lambda.dir/bench_fig20_lambda.cc.o.d"
  "bench_fig20_lambda"
  "bench_fig20_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
