# Empty dependencies file for bench_fig20_lambda.
# This may be replaced when dependencies are built.
