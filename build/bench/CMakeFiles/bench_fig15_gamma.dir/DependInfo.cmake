
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15_gamma.cc" "bench/CMakeFiles/bench_fig15_gamma.dir/bench_fig15_gamma.cc.o" "gcc" "bench/CMakeFiles/bench_fig15_gamma.dir/bench_fig15_gamma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mtshare_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_payment.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_demand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
