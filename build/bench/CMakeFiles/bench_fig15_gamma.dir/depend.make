# Empty dependencies file for bench_fig15_gamma.
# This may be replaced when dependencies are built.
