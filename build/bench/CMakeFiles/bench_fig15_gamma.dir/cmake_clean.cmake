file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_gamma.dir/bench_fig15_gamma.cc.o"
  "CMakeFiles/bench_fig15_gamma.dir/bench_fig15_gamma.cc.o.d"
  "bench_fig15_gamma"
  "bench_fig15_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
