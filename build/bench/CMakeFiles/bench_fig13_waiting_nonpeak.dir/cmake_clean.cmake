file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_waiting_nonpeak.dir/bench_fig13_waiting_nonpeak.cc.o"
  "CMakeFiles/bench_fig13_waiting_nonpeak.dir/bench_fig13_waiting_nonpeak.cc.o.d"
  "bench_fig13_waiting_nonpeak"
  "bench_fig13_waiting_nonpeak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_waiting_nonpeak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
