# Empty compiler generated dependencies file for bench_fig13_waiting_nonpeak.
# This may be replaced when dependencies are built.
