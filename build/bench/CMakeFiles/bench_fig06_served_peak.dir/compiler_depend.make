# Empty compiler generated dependencies file for bench_fig06_served_peak.
# This may be replaced when dependencies are built.
