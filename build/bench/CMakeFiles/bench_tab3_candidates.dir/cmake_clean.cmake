file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_candidates.dir/bench_tab3_candidates.cc.o"
  "CMakeFiles/bench_tab3_candidates.dir/bench_tab3_candidates.cc.o.d"
  "bench_tab3_candidates"
  "bench_tab3_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
