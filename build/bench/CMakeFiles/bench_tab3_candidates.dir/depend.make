# Empty dependencies file for bench_tab3_candidates.
# This may be replaced when dependencies are built.
