# Empty compiler generated dependencies file for bench_fig16_routing_modes.
# This may be replaced when dependencies are built.
