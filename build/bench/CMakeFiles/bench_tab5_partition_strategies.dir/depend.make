# Empty dependencies file for bench_tab5_partition_strategies.
# This may be replaced when dependencies are built.
