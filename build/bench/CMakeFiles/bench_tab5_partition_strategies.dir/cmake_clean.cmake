file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_partition_strategies.dir/bench_tab5_partition_strategies.cc.o"
  "CMakeFiles/bench_tab5_partition_strategies.dir/bench_tab5_partition_strategies.cc.o.d"
  "bench_tab5_partition_strategies"
  "bench_tab5_partition_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_partition_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
