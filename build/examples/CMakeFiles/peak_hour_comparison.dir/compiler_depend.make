# Empty compiler generated dependencies file for peak_hour_comparison.
# This may be replaced when dependencies are built.
