file(REMOVE_RECURSE
  "CMakeFiles/peak_hour_comparison.dir/peak_hour_comparison.cpp.o"
  "CMakeFiles/peak_hour_comparison.dir/peak_hour_comparison.cpp.o.d"
  "peak_hour_comparison"
  "peak_hour_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peak_hour_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
