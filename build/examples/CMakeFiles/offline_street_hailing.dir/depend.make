# Empty dependencies file for offline_street_hailing.
# This may be replaced when dependencies are built.
