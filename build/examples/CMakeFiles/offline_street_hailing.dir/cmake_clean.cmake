file(REMOVE_RECURSE
  "CMakeFiles/offline_street_hailing.dir/offline_street_hailing.cpp.o"
  "CMakeFiles/offline_street_hailing.dir/offline_street_hailing.cpp.o.d"
  "offline_street_hailing"
  "offline_street_hailing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_street_hailing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
