# Empty compiler generated dependencies file for mtshare_partition.
# This may be replaced when dependencies are built.
