file(REMOVE_RECURSE
  "libmtshare_partition.a"
)
