file(REMOVE_RECURSE
  "CMakeFiles/mtshare_partition.dir/partition/bipartite_partitioner.cc.o"
  "CMakeFiles/mtshare_partition.dir/partition/bipartite_partitioner.cc.o.d"
  "CMakeFiles/mtshare_partition.dir/partition/grid_partitioner.cc.o"
  "CMakeFiles/mtshare_partition.dir/partition/grid_partitioner.cc.o.d"
  "CMakeFiles/mtshare_partition.dir/partition/landmark_graph.cc.o"
  "CMakeFiles/mtshare_partition.dir/partition/landmark_graph.cc.o.d"
  "libmtshare_partition.a"
  "libmtshare_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
