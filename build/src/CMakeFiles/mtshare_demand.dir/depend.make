# Empty dependencies file for mtshare_demand.
# This may be replaced when dependencies are built.
