file(REMOVE_RECURSE
  "libmtshare_demand.a"
)
