file(REMOVE_RECURSE
  "CMakeFiles/mtshare_demand.dir/demand/demand_model.cc.o"
  "CMakeFiles/mtshare_demand.dir/demand/demand_model.cc.o.d"
  "CMakeFiles/mtshare_demand.dir/demand/request_generator.cc.o"
  "CMakeFiles/mtshare_demand.dir/demand/request_generator.cc.o.d"
  "CMakeFiles/mtshare_demand.dir/demand/trip_io.cc.o"
  "CMakeFiles/mtshare_demand.dir/demand/trip_io.cc.o.d"
  "libmtshare_demand.a"
  "libmtshare_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
