
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/demand/demand_model.cc" "src/CMakeFiles/mtshare_demand.dir/demand/demand_model.cc.o" "gcc" "src/CMakeFiles/mtshare_demand.dir/demand/demand_model.cc.o.d"
  "/root/repo/src/demand/request_generator.cc" "src/CMakeFiles/mtshare_demand.dir/demand/request_generator.cc.o" "gcc" "src/CMakeFiles/mtshare_demand.dir/demand/request_generator.cc.o.d"
  "/root/repo/src/demand/trip_io.cc" "src/CMakeFiles/mtshare_demand.dir/demand/trip_io.cc.o" "gcc" "src/CMakeFiles/mtshare_demand.dir/demand/trip_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtshare_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
