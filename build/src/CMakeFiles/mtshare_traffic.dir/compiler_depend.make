# Empty compiler generated dependencies file for mtshare_traffic.
# This may be replaced when dependencies are built.
