file(REMOVE_RECURSE
  "CMakeFiles/mtshare_traffic.dir/traffic/congestion.cc.o"
  "CMakeFiles/mtshare_traffic.dir/traffic/congestion.cc.o.d"
  "libmtshare_traffic.a"
  "libmtshare_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
