file(REMOVE_RECURSE
  "libmtshare_traffic.a"
)
