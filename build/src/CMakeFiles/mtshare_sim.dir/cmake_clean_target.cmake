file(REMOVE_RECURSE
  "libmtshare_sim.a"
)
