file(REMOVE_RECURSE
  "CMakeFiles/mtshare_sim.dir/sim/engine.cc.o"
  "CMakeFiles/mtshare_sim.dir/sim/engine.cc.o.d"
  "CMakeFiles/mtshare_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/mtshare_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/mtshare_sim.dir/sim/taxi.cc.o"
  "CMakeFiles/mtshare_sim.dir/sim/taxi.cc.o.d"
  "libmtshare_sim.a"
  "libmtshare_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
