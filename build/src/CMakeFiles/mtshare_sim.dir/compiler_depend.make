# Empty compiler generated dependencies file for mtshare_sim.
# This may be replaced when dependencies are built.
