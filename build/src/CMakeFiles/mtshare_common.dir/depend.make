# Empty dependencies file for mtshare_common.
# This may be replaced when dependencies are built.
