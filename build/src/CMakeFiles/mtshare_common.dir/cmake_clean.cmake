file(REMOVE_RECURSE
  "CMakeFiles/mtshare_common.dir/common/logging.cc.o"
  "CMakeFiles/mtshare_common.dir/common/logging.cc.o.d"
  "CMakeFiles/mtshare_common.dir/common/random.cc.o"
  "CMakeFiles/mtshare_common.dir/common/random.cc.o.d"
  "CMakeFiles/mtshare_common.dir/common/stats.cc.o"
  "CMakeFiles/mtshare_common.dir/common/stats.cc.o.d"
  "CMakeFiles/mtshare_common.dir/common/status.cc.o"
  "CMakeFiles/mtshare_common.dir/common/status.cc.o.d"
  "CMakeFiles/mtshare_common.dir/common/string_util.cc.o"
  "CMakeFiles/mtshare_common.dir/common/string_util.cc.o.d"
  "libmtshare_common.a"
  "libmtshare_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
