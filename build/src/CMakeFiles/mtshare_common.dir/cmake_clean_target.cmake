file(REMOVE_RECURSE
  "libmtshare_common.a"
)
