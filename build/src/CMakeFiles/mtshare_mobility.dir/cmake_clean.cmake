file(REMOVE_RECURSE
  "CMakeFiles/mtshare_mobility.dir/mobility/mobility_clustering.cc.o"
  "CMakeFiles/mtshare_mobility.dir/mobility/mobility_clustering.cc.o.d"
  "CMakeFiles/mtshare_mobility.dir/mobility/transition_model.cc.o"
  "CMakeFiles/mtshare_mobility.dir/mobility/transition_model.cc.o.d"
  "libmtshare_mobility.a"
  "libmtshare_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
