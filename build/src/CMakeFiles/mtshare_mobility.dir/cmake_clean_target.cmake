file(REMOVE_RECURSE
  "libmtshare_mobility.a"
)
