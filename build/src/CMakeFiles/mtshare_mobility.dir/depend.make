# Empty dependencies file for mtshare_mobility.
# This may be replaced when dependencies are built.
