file(REMOVE_RECURSE
  "libmtshare_routing.a"
)
