file(REMOVE_RECURSE
  "CMakeFiles/mtshare_routing.dir/routing/astar.cc.o"
  "CMakeFiles/mtshare_routing.dir/routing/astar.cc.o.d"
  "CMakeFiles/mtshare_routing.dir/routing/bidirectional.cc.o"
  "CMakeFiles/mtshare_routing.dir/routing/bidirectional.cc.o.d"
  "CMakeFiles/mtshare_routing.dir/routing/dijkstra.cc.o"
  "CMakeFiles/mtshare_routing.dir/routing/dijkstra.cc.o.d"
  "CMakeFiles/mtshare_routing.dir/routing/distance_oracle.cc.o"
  "CMakeFiles/mtshare_routing.dir/routing/distance_oracle.cc.o.d"
  "CMakeFiles/mtshare_routing.dir/routing/path.cc.o"
  "CMakeFiles/mtshare_routing.dir/routing/path.cc.o.d"
  "libmtshare_routing.a"
  "libmtshare_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
