# Empty compiler generated dependencies file for mtshare_routing.
# This may be replaced when dependencies are built.
