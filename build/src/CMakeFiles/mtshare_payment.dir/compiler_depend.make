# Empty compiler generated dependencies file for mtshare_payment.
# This may be replaced when dependencies are built.
