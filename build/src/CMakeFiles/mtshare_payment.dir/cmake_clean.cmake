file(REMOVE_RECURSE
  "CMakeFiles/mtshare_payment.dir/payment/payment_model.cc.o"
  "CMakeFiles/mtshare_payment.dir/payment/payment_model.cc.o.d"
  "libmtshare_payment.a"
  "libmtshare_payment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_payment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
