file(REMOVE_RECURSE
  "libmtshare_payment.a"
)
