file(REMOVE_RECURSE
  "CMakeFiles/mtshare_graph.dir/graph/graph_generators.cc.o"
  "CMakeFiles/mtshare_graph.dir/graph/graph_generators.cc.o.d"
  "CMakeFiles/mtshare_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/mtshare_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/mtshare_graph.dir/graph/road_network.cc.o"
  "CMakeFiles/mtshare_graph.dir/graph/road_network.cc.o.d"
  "libmtshare_graph.a"
  "libmtshare_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
