# Empty compiler generated dependencies file for mtshare_graph.
# This may be replaced when dependencies are built.
