file(REMOVE_RECURSE
  "libmtshare_graph.a"
)
