
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph_generators.cc" "src/CMakeFiles/mtshare_graph.dir/graph/graph_generators.cc.o" "gcc" "src/CMakeFiles/mtshare_graph.dir/graph/graph_generators.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/mtshare_graph.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/mtshare_graph.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/road_network.cc" "src/CMakeFiles/mtshare_graph.dir/graph/road_network.cc.o" "gcc" "src/CMakeFiles/mtshare_graph.dir/graph/road_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtshare_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
