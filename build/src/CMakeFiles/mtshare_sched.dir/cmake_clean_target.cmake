file(REMOVE_RECURSE
  "libmtshare_sched.a"
)
