file(REMOVE_RECURSE
  "CMakeFiles/mtshare_sched.dir/sched/partition_filter.cc.o"
  "CMakeFiles/mtshare_sched.dir/sched/partition_filter.cc.o.d"
  "CMakeFiles/mtshare_sched.dir/sched/route_planner.cc.o"
  "CMakeFiles/mtshare_sched.dir/sched/route_planner.cc.o.d"
  "CMakeFiles/mtshare_sched.dir/sched/schedule.cc.o"
  "CMakeFiles/mtshare_sched.dir/sched/schedule.cc.o.d"
  "libmtshare_sched.a"
  "libmtshare_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
