# Empty compiler generated dependencies file for mtshare_sched.
# This may be replaced when dependencies are built.
