
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/partition_filter.cc" "src/CMakeFiles/mtshare_sched.dir/sched/partition_filter.cc.o" "gcc" "src/CMakeFiles/mtshare_sched.dir/sched/partition_filter.cc.o.d"
  "/root/repo/src/sched/route_planner.cc" "src/CMakeFiles/mtshare_sched.dir/sched/route_planner.cc.o" "gcc" "src/CMakeFiles/mtshare_sched.dir/sched/route_planner.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/CMakeFiles/mtshare_sched.dir/sched/schedule.cc.o" "gcc" "src/CMakeFiles/mtshare_sched.dir/sched/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtshare_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_demand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
