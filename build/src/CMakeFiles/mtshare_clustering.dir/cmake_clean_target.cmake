file(REMOVE_RECURSE
  "libmtshare_clustering.a"
)
