file(REMOVE_RECURSE
  "CMakeFiles/mtshare_clustering.dir/clustering/kmeans.cc.o"
  "CMakeFiles/mtshare_clustering.dir/clustering/kmeans.cc.o.d"
  "libmtshare_clustering.a"
  "libmtshare_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
