# Empty compiler generated dependencies file for mtshare_clustering.
# This may be replaced when dependencies are built.
