file(REMOVE_RECURSE
  "libmtshare_geo.a"
)
