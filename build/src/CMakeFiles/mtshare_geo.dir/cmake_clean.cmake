file(REMOVE_RECURSE
  "CMakeFiles/mtshare_geo.dir/geo/latlng.cc.o"
  "CMakeFiles/mtshare_geo.dir/geo/latlng.cc.o.d"
  "CMakeFiles/mtshare_geo.dir/geo/mobility_vector.cc.o"
  "CMakeFiles/mtshare_geo.dir/geo/mobility_vector.cc.o.d"
  "libmtshare_geo.a"
  "libmtshare_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
