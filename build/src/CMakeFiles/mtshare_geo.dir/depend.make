# Empty dependencies file for mtshare_geo.
# This may be replaced when dependencies are built.
