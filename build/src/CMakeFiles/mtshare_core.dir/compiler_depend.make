# Empty compiler generated dependencies file for mtshare_core.
# This may be replaced when dependencies are built.
