file(REMOVE_RECURSE
  "CMakeFiles/mtshare_core.dir/core/mtshare_system.cc.o"
  "CMakeFiles/mtshare_core.dir/core/mtshare_system.cc.o.d"
  "CMakeFiles/mtshare_core.dir/core/system_config.cc.o"
  "CMakeFiles/mtshare_core.dir/core/system_config.cc.o.d"
  "libmtshare_core.a"
  "libmtshare_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
