file(REMOVE_RECURSE
  "libmtshare_core.a"
)
