
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/dispatcher.cc" "src/CMakeFiles/mtshare_matching.dir/matching/dispatcher.cc.o" "gcc" "src/CMakeFiles/mtshare_matching.dir/matching/dispatcher.cc.o.d"
  "/root/repo/src/matching/mt_share.cc" "src/CMakeFiles/mtshare_matching.dir/matching/mt_share.cc.o" "gcc" "src/CMakeFiles/mtshare_matching.dir/matching/mt_share.cc.o.d"
  "/root/repo/src/matching/no_sharing.cc" "src/CMakeFiles/mtshare_matching.dir/matching/no_sharing.cc.o" "gcc" "src/CMakeFiles/mtshare_matching.dir/matching/no_sharing.cc.o.d"
  "/root/repo/src/matching/pgreedy_dp.cc" "src/CMakeFiles/mtshare_matching.dir/matching/pgreedy_dp.cc.o" "gcc" "src/CMakeFiles/mtshare_matching.dir/matching/pgreedy_dp.cc.o.d"
  "/root/repo/src/matching/t_share.cc" "src/CMakeFiles/mtshare_matching.dir/matching/t_share.cc.o" "gcc" "src/CMakeFiles/mtshare_matching.dir/matching/t_share.cc.o.d"
  "/root/repo/src/matching/taxi_index.cc" "src/CMakeFiles/mtshare_matching.dir/matching/taxi_index.cc.o" "gcc" "src/CMakeFiles/mtshare_matching.dir/matching/taxi_index.cc.o.d"
  "/root/repo/src/matching/taxi_state.cc" "src/CMakeFiles/mtshare_matching.dir/matching/taxi_state.cc.o" "gcc" "src/CMakeFiles/mtshare_matching.dir/matching/taxi_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtshare_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_demand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtshare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
