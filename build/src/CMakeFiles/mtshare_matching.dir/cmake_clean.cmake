file(REMOVE_RECURSE
  "CMakeFiles/mtshare_matching.dir/matching/dispatcher.cc.o"
  "CMakeFiles/mtshare_matching.dir/matching/dispatcher.cc.o.d"
  "CMakeFiles/mtshare_matching.dir/matching/mt_share.cc.o"
  "CMakeFiles/mtshare_matching.dir/matching/mt_share.cc.o.d"
  "CMakeFiles/mtshare_matching.dir/matching/no_sharing.cc.o"
  "CMakeFiles/mtshare_matching.dir/matching/no_sharing.cc.o.d"
  "CMakeFiles/mtshare_matching.dir/matching/pgreedy_dp.cc.o"
  "CMakeFiles/mtshare_matching.dir/matching/pgreedy_dp.cc.o.d"
  "CMakeFiles/mtshare_matching.dir/matching/t_share.cc.o"
  "CMakeFiles/mtshare_matching.dir/matching/t_share.cc.o.d"
  "CMakeFiles/mtshare_matching.dir/matching/taxi_index.cc.o"
  "CMakeFiles/mtshare_matching.dir/matching/taxi_index.cc.o.d"
  "CMakeFiles/mtshare_matching.dir/matching/taxi_state.cc.o"
  "CMakeFiles/mtshare_matching.dir/matching/taxi_state.cc.o.d"
  "libmtshare_matching.a"
  "libmtshare_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
