file(REMOVE_RECURSE
  "libmtshare_matching.a"
)
