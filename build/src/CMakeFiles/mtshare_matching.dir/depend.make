# Empty dependencies file for mtshare_matching.
# This may be replaced when dependencies are built.
