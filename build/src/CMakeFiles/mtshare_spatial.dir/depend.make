# Empty dependencies file for mtshare_spatial.
# This may be replaced when dependencies are built.
