file(REMOVE_RECURSE
  "CMakeFiles/mtshare_spatial.dir/spatial/grid_index.cc.o"
  "CMakeFiles/mtshare_spatial.dir/spatial/grid_index.cc.o.d"
  "CMakeFiles/mtshare_spatial.dir/spatial/kdtree.cc.o"
  "CMakeFiles/mtshare_spatial.dir/spatial/kdtree.cc.o.d"
  "libmtshare_spatial.a"
  "libmtshare_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtshare_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
