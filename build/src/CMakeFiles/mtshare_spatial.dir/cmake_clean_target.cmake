file(REMOVE_RECURSE
  "libmtshare_spatial.a"
)
